// Command sempe-asm assembles or disassembles programs for the simulated
// ISA:
//
//	sempe-asm prog.s            # assemble and print a summary
//	sempe-asm -d prog.s         # assemble, then print the disassembly
//	sempe-asm -run prog.s       # assemble and execute on the emulator
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
)

func main() {
	var (
		dis    = flag.Bool("d", false, "print disassembly")
		run    = flag.Bool("run", false, "execute on the functional emulator")
		secure = flag.Bool("sempe", false, "emulate with SeMPE semantics (with -run)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sempe-asm [-d] [-run [-sempe]] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fatal("%v", err)
	}
	sjmp, eos := prog.CountSecure()
	fmt.Printf("%s: %d code bytes, entry %#x, %d sJMP, %d eosJMP\n",
		flag.Arg(0), len(prog.Code), prog.Entry, sjmp, eos)
	if *dis {
		fmt.Print(prog.Disassemble())
	}
	if *run {
		mode := emu.Legacy
		if *secure {
			mode = emu.SeMPE
		}
		m := emu.New(mode, prog)
		if err := m.Run(); err != nil {
			fatal("run: %v", err)
		}
		fmt.Printf("halted after %d instructions (%d branches, %d sJMP, %d eosJMP)\n",
			m.Insts, m.Branches, m.SJmps, m.EOSJmps)
		for r := isa.Reg(8); r < 16; r++ {
			fmt.Printf("  %v = %d (%#x)\n", r, m.Regs[r], m.Regs[r])
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sempe-asm: "+format+"\n", args...)
	os.Exit(1)
}
