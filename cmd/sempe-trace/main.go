// Command sempe-trace records and renders the speculative-window event
// stream — every fetch, predictor lookup, execution, cache fill, and flush of
// in-flight work, wrong-path included — for a workload program or a single
// attack trial. It is the microscope for the transient window that the
// commit-time observables cannot see:
//
//	sempe-trace -workload quicksort -w 2 -arch baseline
//	sempe-trace -workload ones -secret 5 -diff-secret 9 -arch baseline
//	sempe-trace -attacker bp -victim keyloop -width 4 -key 0xb -arch sempe
//	sempe-trace -workload quicksort -json trace.json   # chrome://tracing
//
// The -diff-secret mode runs the same workload under two secrets and diffs
// the wrong-path touch sets: on the unprotected baseline the difference IS
// the transient leak; under -arch sempe it must be empty.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/attack"
	"repro/internal/compile"
	"repro/internal/isa"
	"repro/internal/leak"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

func main() {
	var (
		// Program selection (default mode).
		workload = flag.String("workload", "quicksort", "fibonacci|ones|quicksort|queens")
		w        = flag.Int("w", 2, "secret branches per iteration (microbenchmarks)")
		iters    = flag.Int("i", 4, "iterations of the secure region")
		size     = flag.Int("n", 0, "kernel size parameter (0 = default)")
		secret   = flag.Uint64("secret", 0, "secret input selecting branch paths")
		asmFile  = flag.String("asm", "", "trace an assembly file instead of a built-in workload")

		// Trial selection (-attacker switches to this mode).
		attacker = flag.String("attacker", "", "bp|cache: trace one attack trial instead of a program")
		victimN  = flag.String("victim", "", "victim implementation (default: the direct one-bit victim)")
		trialIdx = flag.Int("trial", 0, "trial index within the deterministic trial stream")
		width    = flag.Int("width", 0, "victim key width in bits (0 = 1)")
		bit      = flag.Int("bit", 0, "attacked bit position")
		key      = flag.Uint64("key", 0, "victim key value for the traced trial")
		gap      = flag.Int("gap", 0, "attacker-strength gap units (live-measurement replay)")
		seed     = flag.Int64("seed", 1, "trial stream seed")
		noise    = flag.Int("noise", 2, "in-window public noise bound")

		// Shared.
		arch       = flag.String("arch", "baseline", "baseline|sempe")
		mode       = flag.String("compile", "", "plain|sempe|cte (default: match -arch)")
		capFlag    = flag.Int("cap", 1<<20, "trace ring capacity (events; oldest dropped beyond this)")
		jsonOut    = flag.String("json", "", "write the trace as Chrome trace_event JSON to FILE instead of text")
		diffSecret = flag.Int64("diff-secret", -1, "diff wrong-path touch sets between -secret and this secret (workload mode)")
	)
	flag.Parse()

	secure, err := attack.ParseArch(*arch)
	if err != nil {
		fatal("%v", err)
	}
	cfg := pipeline.DefaultConfig()
	cmode := compile.Plain
	if secure {
		cfg, cmode = pipeline.SecureConfig(), compile.SeMPE
	}
	switch *mode {
	case "":
	case "plain":
		cmode = compile.Plain
	case "sempe":
		cmode = compile.SeMPE
	case "cte":
		cmode = compile.CTE
	default:
		fatal("unknown -compile %q", *mode)
	}

	if *attacker != "" {
		kind, err := attack.ParseKind(*attacker)
		if err != nil {
			fatal("%v", err)
		}
		p := attack.DefaultParams(kind, secure)
		p.Victim, p.Width, p.Bit, p.Gap, p.Seed, p.Noise = *victimN, *width, *bit, *gap, *seed, *noise
		tr := pipeline.NewTracer(*capFlag)
		obs, err := attack.TraceTrial(p, *trialIdx, *key, tr.Record)
		if err != nil {
			fatal("trial: %v", err)
		}
		fmt.Printf("trial %d (%s/%s key=%#x bit=%d): observation %v\n",
			*trialIdx, kind, attack.ArchName(secure), *key, *bit, obs)
		dump(tr, *jsonOut)
		return
	}

	build := func(sec uint64) (*isa.Program, error) {
		if *asmFile != "" {
			src, err := os.ReadFile(*asmFile)
			if err != nil {
				return nil, err
			}
			return asm.Assemble(string(src))
		}
		kind, ok := parseKind(*workload)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", *workload)
		}
		lp := workloads.Harness(workloads.HarnessSpec{
			Kind: kind, Size: *size, W: *w, I: *iters, Secret: sec,
		})
		out, err := compile.Compile(lp, cmode)
		if err != nil {
			return nil, err
		}
		return out.Prog, nil
	}

	if *diffSecret >= 0 {
		if *asmFile != "" {
			fatal("-diff-secret needs a workload parameterized by -secret, not -asm")
		}
		diffRun(cfg, build, *secret, uint64(*diffSecret))
		return
	}

	prog, err := build(*secret)
	if err != nil {
		fatal("%v", err)
	}
	tr := pipeline.NewTracer(*capFlag)
	core := pipeline.New(cfg, prog)
	core.SetSpecWatch(tr.Record)
	if err := core.Run(); err != nil {
		fatal("run: %v", err)
	}
	s := core.Stats
	fmt.Printf("%d cycles, %d insts; wrong-path fetches %d, squashed uops %d, flushes %d mispredict / %d secure / %d overflow\n",
		s.Cycles, s.Insts, s.WrongPathFetches, s.SquashedUops,
		s.FlushMispredicts, s.FlushSecRedirects, s.FlushOverflows)
	dump(tr, *jsonOut)
}

// dump renders the recorded trace: Chrome JSON when a path was given, the
// text timeline otherwise.
func dump(tr *pipeline.Tracer, jsonOut string) {
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			fatal("%v", err)
		}
		if err := tr.WriteChromeJSON(f); err != nil {
			fatal("json: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("json: %v", err)
		}
		fmt.Printf("spec trace: %d events (%d dropped) -> %s\n", tr.Total(), tr.Dropped(), jsonOut)
		return
	}
	if err := tr.WriteText(os.Stdout); err != nil {
		fatal("%v", err)
	}
}

// diffRun traces the same workload under two secrets and reports the
// difference of the wrong-path touch sets — the transient leak, if any.
func diffRun(cfg pipeline.Config, build func(uint64) (*isa.Program, error), sa, sb uint64) {
	observe := func(sec uint64) leak.SpecObservation {
		prog, err := build(sec)
		if err != nil {
			fatal("%v", err)
		}
		so, _, err := leak.ObserveSpec(cfg, prog)
		if err != nil {
			fatal("run secret=%d: %v", sec, err)
		}
		return so
	}
	a, b := observe(sa), observe(sb)
	fmt.Printf("secret=%d: %d wrong-path loads, %d stores, %d branches, %d fills (%d squashed uops)\n",
		sa, len(a.WrongPathLoads), len(a.WrongPathStores), len(a.WrongPathBranches), len(a.WrongPathFills), a.SquashedUops)
	fmt.Printf("secret=%d: %d wrong-path loads, %d stores, %d branches, %d fills (%d squashed uops)\n",
		sb, len(b.WrongPathLoads), len(b.WrongPathStores), len(b.WrongPathBranches), len(b.WrongPathFills), b.SquashedUops)
	if leak.TouchSetsEqual(a, b) {
		fmt.Println("wrong-path touch sets IDENTICAL across secrets (no transient leak)")
		return
	}
	fmt.Println("wrong-path touch sets DIFFER across secrets — transient leak:")
	diffSet := func(name string, xa, xb []uint64) {
		onlyA, onlyB := setDiff(xa, xb), setDiff(xb, xa)
		if len(onlyA) == 0 && len(onlyB) == 0 {
			return
		}
		fmt.Printf("  %s:\n", name)
		for _, v := range onlyA {
			fmt.Printf("    only secret=%d: %#x\n", sa, v)
		}
		for _, v := range onlyB {
			fmt.Printf("    only secret=%d: %#x\n", sb, v)
		}
	}
	diffSet("loads", a.WrongPathLoads, b.WrongPathLoads)
	diffSet("stores", a.WrongPathStores, b.WrongPathStores)
	diffSet("branches", a.WrongPathBranches, b.WrongPathBranches)
	diffSet("cache fills", a.WrongPathFills, b.WrongPathFills)
}

// setDiff returns the elements of sorted set a missing from sorted set b.
func setDiff(a, b []uint64) []uint64 {
	var out []uint64
	for _, v := range a {
		if !leak.ContainsAddr(b, v) {
			out = append(out, v)
		}
	}
	return out
}

func parseKind(s string) (workloads.Kind, bool) {
	for _, k := range workloads.All() {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sempe-trace: "+format+"\n", args...)
	os.Exit(1)
}
