// Command sempe-attack runs the attack lab one-off: a concrete
// microarchitectural attacker (Spectre-PHT branch-predictor probe or DL1
// prime+probe) against a secret-parameterized victim on the simulated
// core, with the full statistical assessment — TVLA fixed-vs-random,
// a mutual-information estimate, and the secret-recovery rate with its
// 95% confidence interval:
//
//	sempe-attack                             # both attackers, both architectures
//	sempe-attack -attacker bp -arch baseline -trials 200
//	sempe-attack -format json
//	sempe-attack -check                      # exit 1 unless baseline leaks AND SeMPE holds
//
// With -victim the lab switches to multi-bit key extraction: the chosen
// victim (keyloop, modexp, ctcompare, bit — see internal/victim) is
// attacked bit by bit over a -bits wide key, optionally with -gap units of
// uncontrolled activity between train and probe (a weaker attacker):
//
//	sempe-attack -victim keyloop -bits 8
//	sempe-attack -victim modexp -bits 8 -gap 64 -arch baseline
//	sempe-attack -victim ctcompare -bits 8 -check   # negative control must stay SECURE
//
// In extraction mode -check requires every leaky victim to yield its full
// key on the baseline and every SeMPE (and constant-time) result to stay
// secure. The grid sweep equivalents are the `spectre`/`tvla` and
// `keyextract`/`noise` scenarios on sempe-bench / sempe-sweep; this binary
// is for quick interactive runs and the CI attack-smoke job.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/obs"
	"repro/internal/stattest"
	"repro/internal/victim"
)

func main() {
	defaults := attack.DefaultParams(attack.BPProbe, false)
	var (
		attackerF = flag.String("attacker", "all", "bp|cache|all")
		archF     = flag.String("arch", "both", "baseline|sempe|both")
		trials    = flag.Int("trials", defaults.Trials, "trials per batch; in extraction mode, trials per bit (default there is 40 unless set)")
		seed      = flag.Int64("seed", defaults.Seed, "deterministic trial seed")
		noise     = flag.Int("noise", defaults.Noise, "max in-window public noise ops per trial")
		victimF   = flag.String("victim", "", "key-extraction mode: victim to attack (see -list-victims)")
		bits      = flag.Int("bits", 8, "extraction mode: key width in bits")
		gap       = flag.Int("gap", 0, "extraction mode: units of train-to-probe gap activity (weaker attacker)")
		keyF      = flag.Int64("key", -1, "extraction mode: pin the true key (-1 = derive from seed)")
		listVics  = flag.Bool("list-victims", false, "list the registered victims and exit")
		workers   = flag.Int("workers", 1, "trial worker pool size (results are bit-identical at any value)")
		sbstats   = flag.Bool("sbstats", false, "report throughput-engine counters (template cache, core pool, superblock builds/replays/legacy ops)")
		metricsF  = flag.String("metrics", "", "after the run, write the Prometheus text exposition of the process metric families to this file (- for stderr)")
		format    = flag.String("format", "text", "output encoding: text|json")
		check     = flag.Bool("check", false, "exit 1 unless every baseline attack leaks (leaky victims: full key) and every SeMPE attack is secure")
	)
	flag.Parse()

	if *listVics {
		for _, v := range victim.All() {
			leaky := "leaky"
			if !v.Leaky() {
				leaky = "control"
			}
			fmt.Printf("%-10s %-8s %s\n", v.Name(), leaky, v.Describe())
		}
		return
	}

	kinds := attack.AllKinds()
	if *attackerF != "all" {
		k, err := attack.ParseKind(*attackerF)
		if err != nil {
			fatal("%v", err)
		}
		kinds = []attack.Kind{k}
	}
	archs := []bool{false, true}
	if *archF != "both" {
		secure, err := attack.ParseArch(*archF)
		if err != nil {
			fatal("%v", err)
		}
		archs = []bool{secure}
	}
	switch *format {
	case "text", "json":
	default:
		fatal("unknown format %q (want text or json)", *format)
	}

	if *victimF != "" {
		v, err := victim.Lookup(*victimF)
		if err != nil {
			fatal("%v", err)
		}
		// Unless -trials was given explicitly, extraction mode uses the
		// per-bit default (100 per bit is overkill for a deterministic
		// simulator; match DefaultKeyParams).
		extractTrials := attack.DefaultKeyParams(attack.BPProbe, false).Trials
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "trials" {
				extractTrials = *trials
			}
		})
		var results []attack.KeyRecovery
		ok := true
		for _, kind := range kinds {
			for _, secure := range archs {
				kr, err := attack.ExtractKey(attack.KeyParams{
					Kind:    kind,
					Secure:  secure,
					Victim:  v.Name(),
					Width:   *bits,
					Trials:  extractTrials,
					Seed:    *seed,
					Noise:   *noise,
					Gap:     *gap,
					Key:     *keyF,
					Workers: *workers,
				})
				if err != nil {
					fatal("%v", err)
				}
				results = append(results, kr)
				if !kr.MeetsExpectation(v.Leaky()) {
					ok = false
				}
			}
		}
		switch *format {
		case "json":
			emitJSON(results, *sbstats)
		default:
			for _, kr := range results {
				fmt.Println(kr)
				for _, b := range kr.Bits {
					tte := "-"
					if b.TrialsToExtract >= 0 {
						tte = fmt.Sprintf("%d", b.TrialsToExtract)
					}
					fmt.Printf("    bit %2d: true %d guess %d  acc %5.1f%% (CI %.1f%%..%.1f%%, %d discarded)  recovery %5.1f%%  |t| %.1f  tte %s\n",
						b.Bit, b.TrueBit, b.Guess, 100*b.Accuracy, 100*b.AccLo, 100*b.AccHi,
						b.Discarded, 100*b.Recovery, b.MaxAbsT, tte)
				}
			}
			printPerf(*sbstats)
		}
		dumpMetrics(*metricsF)
		gate(*check, ok, "expected every leaky victim to yield its full key on the baseline, and every SeMPE or constant-time result to stay secure")
		return
	}

	var results []attack.Assessment
	ok := true
	for _, kind := range kinds {
		for _, secure := range archs {
			a, err := attack.RunAssessment(attack.Params{
				Kind:    kind,
				Secure:  secure,
				Trials:  *trials,
				Seed:    *seed,
				Noise:   *noise,
				Workers: *workers,
			})
			if err != nil {
				fatal("%v", err)
			}
			results = append(results, a)
			if secure == a.Leaks() {
				// The baseline must leak; SeMPE must not.
				ok = false
			}
		}
	}

	switch *format {
	case "json":
		emitJSON(results, *sbstats)
	default:
		for _, a := range results {
			fmt.Println(a)
			for _, c := range a.Columns {
				fmt.Printf("    %-16s t = %.1f\n", c.Column, c.T)
			}
		}
		fmt.Printf("TVLA threshold |t| >= %.1f; recovery 'LEAK' means the 95%% CI clears 50%%\n", stattest.TVLAThreshold)
		printPerf(*sbstats)
	}

	dumpMetrics(*metricsF)
	gate(*check, ok, "expected every baseline attack to leak and every SeMPE attack to be secure")
}

// dumpMetrics writes the process-wide metric families (the same counters
// behind -sbstats, as Prometheus text exposition) to path, "-" meaning
// stderr so it composes with -format json on stdout.
func dumpMetrics(path string) {
	if path == "" {
		return
	}
	if path == "-" {
		obs.Default().WriteText(os.Stderr)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal("metrics: %v", err)
	}
	obs.Default().WriteText(f)
	if err := f.Close(); err != nil {
		fatal("metrics: %v", err)
	}
}

// emitJSON encodes the results, wrapping them with the throughput-engine
// perf counters when -sbstats is set (plain results otherwise, so existing
// consumers of the JSON output see an unchanged shape by default).
func emitJSON(results any, sbstats bool) {
	var payload any = results
	if sbstats {
		payload = struct {
			Results any         `json:"results"`
			Perf    attack.Perf `json:"perf"`
		}{results, attack.PerfSnapshot()}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		fatal("json: %v", err)
	}
}

// printPerf renders the -sbstats counter block for text output.
func printPerf(sbstats bool) {
	if !sbstats {
		return
	}
	p := attack.PerfSnapshot()
	fmt.Printf("perf: template cache %d hits / %d misses / %d fallbacks / %d evictions\n",
		p.TemplateHits, p.TemplateMisses, p.TemplateFallbacks, p.TemplateEvictions)
	fmt.Printf("perf: core pool %d built / %d reset\n", p.CoreBuilds, p.CoreResets)
	fmt.Printf("perf: superblocks %d built, %d replayed ops, %d legacy ops\n",
		p.SBBuilds, p.SBReplays, p.SBLegacyOps)
	fmt.Printf("perf: wrong path %d builds, %d replayed ops squashed\n",
		p.SBWrongPathBuilds, p.SBWrongPathReplays)
	if p.TrialSeconds > 0 {
		fmt.Printf("perf: %d trials in %.3fs (%.0f trials/s)\n",
			p.Trials, p.TrialSeconds, float64(p.Trials)/p.TrialSeconds)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sempe-attack: "+format+"\n", args...)
	os.Exit(1)
}

// gate applies -check with the mode's own expectation in the failure
// message, so a failing CI smoke points at what was actually violated.
func gate(check, ok bool, expectation string) {
	if check && !ok {
		fmt.Fprintf(os.Stderr, "sempe-attack: CHECK FAILED: %s\n", expectation)
		os.Exit(1)
	}
	if check {
		fmt.Fprintln(os.Stderr, "sempe-attack: check passed")
	}
}
