// Command sempe-attack runs the attack lab one-off: a concrete
// microarchitectural attacker (Spectre-PHT branch-predictor probe or DL1
// prime+probe) against a secret-parameterized victim on the simulated
// core, with the full statistical assessment — TVLA fixed-vs-random,
// a mutual-information estimate, and the secret-recovery rate with its
// 95% confidence interval:
//
//	sempe-attack                             # both attackers, both architectures
//	sempe-attack -attacker bp -arch baseline -trials 200
//	sempe-attack -format json
//	sempe-attack -check                      # exit 1 unless baseline leaks AND SeMPE holds
//
// The grid sweep equivalents are the `spectre` and `tvla` scenarios on
// sempe-bench / sempe-sweep; this binary is for quick interactive runs
// and the CI attack-smoke job.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/stattest"
)

func main() {
	defaults := attack.DefaultParams(attack.BPProbe, false)
	var (
		attackerF = flag.String("attacker", "all", "bp|cache|all")
		archF     = flag.String("arch", "both", "baseline|sempe|both")
		trials    = flag.Int("trials", defaults.Trials, "trials per batch")
		seed      = flag.Int64("seed", defaults.Seed, "deterministic trial seed")
		noise     = flag.Int("noise", defaults.Noise, "max in-window public noise ops per trial")
		format    = flag.String("format", "text", "output encoding: text|json")
		check     = flag.Bool("check", false, "exit 1 unless every baseline attack leaks and every SeMPE attack is secure")
	)
	flag.Parse()

	kinds := attack.AllKinds()
	if *attackerF != "all" {
		k, err := attack.ParseKind(*attackerF)
		if err != nil {
			fatal("%v", err)
		}
		kinds = []attack.Kind{k}
	}
	archs := []bool{false, true}
	if *archF != "both" {
		secure, err := attack.ParseArch(*archF)
		if err != nil {
			fatal("%v", err)
		}
		archs = []bool{secure}
	}
	switch *format {
	case "text", "json":
	default:
		fatal("unknown format %q (want text or json)", *format)
	}

	var results []attack.Assessment
	ok := true
	for _, kind := range kinds {
		for _, secure := range archs {
			a, err := attack.RunAssessment(attack.Params{
				Kind:   kind,
				Secure: secure,
				Trials: *trials,
				Seed:   *seed,
				Noise:  *noise,
			})
			if err != nil {
				fatal("%v", err)
			}
			results = append(results, a)
			if secure == a.Leaks() {
				// The baseline must leak; SeMPE must not.
				ok = false
			}
		}
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal("json: %v", err)
		}
	default:
		for _, a := range results {
			fmt.Println(a)
			for _, c := range a.Columns {
				fmt.Printf("    %-16s t = %.1f\n", c.Column, c.T)
			}
		}
		fmt.Printf("TVLA threshold |t| >= %.1f; recovery 'LEAK' means the 95%% CI clears 50%%\n", stattest.TVLAThreshold)
	}

	if *check && !ok {
		fmt.Fprintln(os.Stderr, "sempe-attack: CHECK FAILED: expected every baseline attack to leak and every SeMPE attack to be secure")
		os.Exit(1)
	}
	if *check {
		fmt.Fprintln(os.Stderr, "sempe-attack: check passed")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sempe-attack: "+format+"\n", args...)
	os.Exit(1)
}
