// Command sempe-serve exposes the scenario registry as an HTTP evaluation
// service: list scenarios, start parameterized sweeps with bounded
// concurrency, poll progress, cancel in-flight runs, and fetch structured
// results. Completed results are cached in-memory (LRU, keyed by
// scenario + spec); with -store they are also persisted on disk, so a
// restarted server answers warm and a directory can be shared with the
// sempe-sweep cluster coordinator.
//
//	sempe-serve -addr :8080 -store results/
//	sempe-serve -addr :8081 -worker        # cluster worker (POST /shards)
//	sempe-serve -cluster-workers http://a:8081,http://b:8082   # front a fleet
//
//	curl localhost:8080/scenarios
//	curl -X POST localhost:8080/runs -d '{"scenario":"fig10a","spec":{"quick":true},"wait":true}'
//	curl -X POST localhost:8080/runs -d '{"scenario":"leakmatrix"}'   # 202 + poll
//	curl localhost:8080/runs/run-2
//	curl localhost:8080/runs/run-2/events     # span journal for the run
//	curl -X POST localhost:8080/runs/run-2/cancel
//	curl localhost:8080/metrics               # Prometheus text exposition
//
// Observability: GET /metrics always serves the Prometheus text exposition
// (HTTP latency/status, run lifecycle, cache/store effectiveness, semaphore
// occupancy, simulator counters); -pprof additionally mounts
// net/http/pprof under /debug/pprof/. Logs go to stderr via log/slog at
// -log-level (worker drops and shard retries are logged at warn).
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes, and
// in-flight HTTP requests get -shutdown-grace to finish before the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	_ "repro/internal/experiments" // registers the paper's scenarios
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("max-workers", 0, "cap on per-run worker goroutines (0 = all CPUs)")
		runs      = flag.Int("max-runs", 2, "sweeps simulating concurrently; further runs queue")
		entries   = flag.Int("cache", 64, "LRU result-cache capacity (completed runs)")
		storeDir  = flag.String("store", "", "persistent result-store directory (empty = in-memory cache only)")
		worker    = flag.Bool("worker", false, "enable the cluster shard endpoint (POST /shards) for sempe-sweep")
		clusterF  = flag.String("cluster-workers", "", "comma-separated sempe-serve -worker URLs; shardable runs are dispatched to the fleet instead of computed locally")
		shardSize = flag.Int("cluster-shard", 0, "grid points per dispatched shard with -cluster-workers (0 = coordinator default)")
		pprofF    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
		grace     = flag.Duration("shutdown-grace", 15*time.Second, "how long in-flight requests get to finish on SIGINT/SIGTERM")
	)
	flag.Parse()

	lvl, err := parseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sempe-serve: %v\n", err)
		os.Exit(1)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	slog.SetDefault(logger)
	log := logger.With("cmd", "sempe-serve")

	clusterWorkers, err := cluster.ParseWorkers(*clusterF)
	if err != nil {
		log.Error("bad -cluster-workers", "err", err)
		os.Exit(1)
	}
	opts := serve.Options{
		MaxWorkers:        *workers,
		MaxConcurrentRuns: *runs,
		CacheEntries:      *entries,
		Worker:            *worker,
		ClusterWorkers:    clusterWorkers,
		ClusterShardSize:  *shardSize,
		EnablePprof:       *pprofF,
		Logger:            log,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Error("store open failed", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
		opts.Store = st
		log.Info("result store open", "dir", st.Dir(), "code_version", store.CodeVersion)
	}
	srv := serve.New(opts)

	mode := "server"
	if *worker {
		mode = "server+worker"
	}
	if len(clusterWorkers) > 0 {
		mode += "+coordinator"
	}
	log.Info("listening", "mode", mode, "addr", *addr,
		"scenarios", len(scenario.Names()), "pprof", *pprofF)
	for _, name := range scenario.Names() {
		fmt.Printf("  %s\n", name)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		stop() // a second signal kills immediately via the default handler
		log.Info("shutting down", "grace", *grace)
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		done <- hs.Shutdown(sctx)
	}()
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Error("listen failed", "err", err)
		os.Exit(1)
	}
	if err := <-done; err != nil {
		log.Error("shutdown failed", "err", err)
		os.Exit(1)
	}
	log.Info("stopped")
}

// parseLogLevel maps the -log-level flag to a slog.Level.
func parseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", s)
}
