// Command sempe-serve exposes the scenario registry as an HTTP evaluation
// service: list scenarios, start parameterized sweeps with bounded
// concurrency, poll progress, cancel in-flight runs, and fetch structured
// results. Completed results are cached in-memory (LRU, keyed by
// scenario + spec); with -store they are also persisted on disk, so a
// restarted server answers warm and a directory can be shared with the
// sempe-sweep cluster coordinator.
//
//	sempe-serve -addr :8080 -store results/
//	sempe-serve -addr :8081 -worker        # cluster worker (POST /shards)
//
//	curl localhost:8080/scenarios
//	curl -X POST localhost:8080/runs -d '{"scenario":"fig10a","spec":{"quick":true},"wait":true}'
//	curl -X POST localhost:8080/runs -d '{"scenario":"leakmatrix"}'   # 202 + poll
//	curl localhost:8080/runs/run-2
//	curl -X POST localhost:8080/runs/run-2/cancel
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes, and
// in-flight HTTP requests get -shutdown-grace to finish before the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	_ "repro/internal/experiments" // registers the paper's scenarios
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("max-workers", 0, "cap on per-run worker goroutines (0 = all CPUs)")
		runs     = flag.Int("max-runs", 2, "sweeps simulating concurrently; further runs queue")
		entries  = flag.Int("cache", 64, "LRU result-cache capacity (completed runs)")
		storeDir = flag.String("store", "", "persistent result-store directory (empty = in-memory cache only)")
		worker   = flag.Bool("worker", false, "enable the cluster shard endpoint (POST /shards) for sempe-sweep")
		grace    = flag.Duration("shutdown-grace", 15*time.Second, "how long in-flight requests get to finish on SIGINT/SIGTERM")
	)
	flag.Parse()

	opts := serve.Options{
		MaxWorkers:        *workers,
		MaxConcurrentRuns: *runs,
		CacheEntries:      *entries,
		Worker:            *worker,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatalf("sempe-serve: %v", err)
		}
		opts.Store = st
		log.Printf("sempe-serve: result store at %s (code version %s)", st.Dir(), store.CodeVersion)
	}
	srv := serve.New(opts)

	mode := "server"
	if *worker {
		mode = "server+worker"
	}
	log.Printf("sempe-serve: %s listening on %s (%d scenarios registered)", mode, *addr, len(scenario.Names()))
	for _, name := range scenario.Names() {
		fmt.Printf("  %s\n", name)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		stop() // a second signal kills immediately via the default handler
		log.Printf("sempe-serve: shutting down (grace %v)", *grace)
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		done <- hs.Shutdown(sctx)
	}()
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("sempe-serve: %v", err)
	}
	if err := <-done; err != nil {
		log.Fatalf("sempe-serve: shutdown: %v", err)
	}
	log.Printf("sempe-serve: stopped")
}
