// Command sempe-serve exposes the scenario registry as an HTTP evaluation
// service: list scenarios, start parameterized sweeps with bounded
// concurrency, poll progress, and fetch structured results. Completed
// results are cached in-memory (LRU, keyed by scenario + spec), so
// repeated queries are served without re-simulating.
//
//	sempe-serve -addr :8080
//
//	curl localhost:8080/scenarios
//	curl -X POST localhost:8080/runs -d '{"scenario":"fig10a","spec":{"quick":true},"wait":true}'
//	curl -X POST localhost:8080/runs -d '{"scenario":"leakmatrix"}'   # 202 + poll
//	curl localhost:8080/runs/run-2
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	_ "repro/internal/experiments" // registers the paper's scenarios
	"repro/internal/scenario"
	"repro/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("max-workers", 0, "cap on per-run worker goroutines (0 = all CPUs)")
		runs    = flag.Int("max-runs", 2, "sweeps simulating concurrently; further runs queue")
		entries = flag.Int("cache", 64, "LRU result-cache capacity (completed runs)")
	)
	flag.Parse()

	srv := serve.New(serve.Options{
		MaxWorkers:        *workers,
		MaxConcurrentRuns: *runs,
		CacheEntries:      *entries,
	})
	log.Printf("sempe-serve: listening on %s (%d scenarios registered)", *addr, len(scenario.Names()))
	for _, name := range scenario.Names() {
		fmt.Printf("  %s\n", name)
	}
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
