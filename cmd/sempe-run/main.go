// Command sempe-run executes a workload on the simulated core and prints
// the execution statistics. It is the quickest way to see SeMPE's effect:
//
//	sempe-run -workload quicksort -w 4 -arch baseline
//	sempe-run -workload quicksort -w 4 -arch sempe
//	sempe-run -workload djpeg-ppm -blocks 32 -arch sempe
//	sempe-run -asm prog.s -arch sempe
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/isa"
	"repro/internal/jpegsim"
	"repro/internal/lang"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "quicksort", "fibonacci|ones|quicksort|queens|djpeg-ppm|djpeg-gif|djpeg-bmp")
		arch      = flag.String("arch", "baseline", "baseline|sempe (which core runs the program)")
		mode      = flag.String("compile", "", "plain|sempe|cte (default: match -arch)")
		w         = flag.Int("w", 4, "secret branches per iteration (microbenchmarks)")
		iters     = flag.Int("i", 8, "iterations of the secure region")
		size      = flag.Int("n", 0, "kernel size parameter (0 = default)")
		secret    = flag.Uint64("secret", 0, "secret input selecting branch paths")
		blocks    = flag.Int("blocks", 32, "image blocks (djpeg workloads)")
		sparsity  = flag.Int("sparsity", 50, "busy-block percentage (djpeg workloads)")
		seed      = flag.Uint64("seed", 11, "image content seed (djpeg workloads)")
		asmFile   = flag.String("asm", "", "run an assembly file instead of a built-in workload")
		disasm    = flag.Bool("disasm", false, "print the disassembly before running")
		taint     = flag.Bool("taint", true, "run the secret-taint linter on DSL workloads")
		collapse  = flag.Bool("collapse", false, "apply the nesting-collapse optimization (paper §IV-E)")
		trace     = flag.Bool("trace", false, "record the speculative-window event stream and print the timeline")
		traceJSON = flag.String("trace-json", "", "write the spec trace as Chrome trace_event JSON to FILE")
		traceCap  = flag.Int("trace-cap", 1<<20, "spec-trace ring capacity (events; oldest dropped beyond this)")
	)
	flag.Parse()

	cfg := pipeline.DefaultConfig()
	secure := false
	switch *arch {
	case "baseline":
	case "sempe":
		cfg = pipeline.SecureConfig()
		secure = true
	default:
		fatal("unknown -arch %q", *arch)
	}
	cmode := compile.Plain
	if secure {
		cmode = compile.SeMPE
	}
	switch *mode {
	case "":
	case "plain":
		cmode = compile.Plain
	case "sempe":
		cmode = compile.SeMPE
	case "cte":
		cmode = compile.CTE
	default:
		fatal("unknown -compile %q", *mode)
	}

	var prog *isa.Program
	switch {
	case *asmFile != "":
		src, err := os.ReadFile(*asmFile)
		if err != nil {
			fatal("%v", err)
		}
		p, err := asm.Assemble(string(src))
		if err != nil {
			fatal("%v", err)
		}
		prog = p
	default:
		var lp *lang.Program
		if strings.HasPrefix(*workload, "djpeg-") {
			var format jpegsim.Format
			switch strings.TrimPrefix(*workload, "djpeg-") {
			case "ppm":
				format = jpegsim.PPM
			case "gif":
				format = jpegsim.GIF
			case "bmp":
				format = jpegsim.BMP
			default:
				fatal("unknown workload %q", *workload)
			}
			lp = jpegsim.BuildProgram(jpegsim.ImageSpec{
				Format: format, Blocks: *blocks, Sparsity: *sparsity, Seed: *seed,
			})
		} else {
			kind, ok := parseKind(*workload)
			if !ok {
				fatal("unknown workload %q", *workload)
			}
			lp = workloads.Harness(workloads.HarnessSpec{
				Kind: kind, Size: *size, W: *w, I: *iters, Secret: *secret,
			})
		}
		if *taint {
			if rep := lang.AnalyzeTaint(lp); !rep.Clean() {
				fmt.Fprintf(os.Stderr, "taint: unmarked=%v loops=%v indices=%v\n",
					rep.UnmarkedBranches, rep.SecretLoopConds, rep.SecretIndices)
			}
		}
		if *collapse {
			n := lang.CollapseNested(lp)
			fmt.Printf("collapsed %d nested secret branches\n", n)
		}
		out, err := compile.Compile(lp, cmode)
		if err != nil {
			fatal("compile: %v", err)
		}
		prog = out.Prog
	}

	if *disasm {
		fmt.Println(prog.Disassemble())
	}
	sjmp, eos := prog.CountSecure()
	fmt.Printf("binary: %d code bytes, %d static sJMP, %d static eosJMP (compile=%v arch=%s)\n",
		len(prog.Code), sjmp, eos, cmode, *arch)

	core := pipeline.New(cfg, prog)
	var tr *pipeline.Tracer
	if *trace || *traceJSON != "" {
		tr = pipeline.NewTracer(*traceCap)
		core.SetSpecWatch(tr.Record)
	}
	if err := core.Run(); err != nil {
		fatal("run: %v", err)
	}
	printStats(core)
	if tr != nil {
		if *trace {
			fmt.Println()
			if err := tr.WriteText(os.Stdout); err != nil {
				fatal("trace: %v", err)
			}
		}
		if *traceJSON != "" {
			f, err := os.Create(*traceJSON)
			if err != nil {
				fatal("trace-json: %v", err)
			}
			if err := tr.WriteChromeJSON(f); err != nil {
				fatal("trace-json: %v", err)
			}
			if err := f.Close(); err != nil {
				fatal("trace-json: %v", err)
			}
			fmt.Printf("spec trace: %d events (%d dropped) -> %s\n", tr.Total(), tr.Dropped(), *traceJSON)
		}
	}
}

func parseKind(s string) (workloads.Kind, bool) {
	for _, k := range workloads.All() {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

func printStats(core *pipeline.Core) {
	s := core.Stats
	t := &stats.Table{Title: "execution statistics", Header: []string{"metric", "value"}}
	t.AddRow("cycles", stats.Int(s.Cycles))
	t.AddRow("instructions", stats.Int(s.Insts))
	t.AddRow("CPI", stats.Float(s.CPI(), 3))
	t.AddRow("branches", stats.Int(s.Branches))
	t.AddRow("mispredicts", stats.Int(s.BranchMispredicts))
	t.AddRow("sJMP committed", stats.Int(s.SJmps))
	t.AddRow("eosJMP committed", stats.Int(s.EOSJmps))
	t.AddRow("secure jump-backs", stats.Int(s.SecRedirects))
	t.AddRow("wrong-path fetches", stats.Int(s.WrongPathFetches))
	t.AddRow("squashed uops", stats.Int(s.SquashedUops))
	t.AddRow("flushes (mispredict/secure/overflow)",
		fmt.Sprintf("%d/%d/%d", s.FlushMispredicts, s.FlushSecRedirects, s.FlushOverflows))
	t.AddRow("max secure nesting", fmt.Sprintf("%d", s.MaxNestDepth))
	t.AddRow("drain stall cycles", stats.Int(s.DrainStallCycles))
	t.AddRow("SPM stall cycles", stats.Int(s.SPMStallCycles))
	t.AddRow("SPM bytes saved/restored", fmt.Sprintf("%d/%d", core.SPM.BytesSaved, core.SPM.BytesRestored))
	t.AddRow("IL1 miss rate", stats.Percent(core.Hier.IL1.Stats.MissRate()))
	t.AddRow("DL1 miss rate", stats.Percent(core.Hier.DL1.Stats.MissRate()))
	t.AddRow("L2 miss rate", stats.Percent(core.Hier.L2.Stats.MissRate()))
	t.AddRow("TAGE mispredict rate", stats.Percent(core.BP.TAGE.MispredictRate()))
	t.Render(os.Stdout)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sempe-run: "+format+"\n", args...)
	os.Exit(1)
}
