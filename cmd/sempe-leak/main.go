// Command sempe-leak runs the side-channel distinguisher: it executes a
// workload under two different secrets on both the unprotected baseline and
// the SeMPE core and reports which observable channels tell the secrets
// apart. On a correct implementation the baseline leaks and SeMPE does not:
//
//	sempe-leak -workload quicksort -w 3
//	sempe-leak -workload djpeg-ppm
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/compile"
	"repro/internal/isa"
	"repro/internal/jpegsim"
	"repro/internal/leak"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "quicksort", "fibonacci|ones|quicksort|queens|djpeg-ppm|djpeg-gif|djpeg-bmp")
		w        = flag.Int("w", 3, "secret branches per iteration")
		iters    = flag.Int("i", 2, "iterations")
		s1       = flag.Uint64("s1", 0, "first secret (or image seed)")
		s2       = flag.Uint64("s2", 5, "second secret (or image seed)")
		blocks   = flag.Int("blocks", 16, "image blocks (djpeg)")
	)
	flag.Parse()

	build := func(mode compile.Mode) func(uint64) (*isa.Program, error) {
		return func(secret uint64) (*isa.Program, error) {
			if name, isImage := strings.CutPrefix(*workload, "djpeg-"); isImage {
				f, err := jpegsim.ParseFormat(name)
				if err != nil {
					return nil, fmt.Errorf("unknown workload %q: %w", *workload, err)
				}
				spec := jpegsim.ImageSpec{Format: f, Blocks: *blocks, Sparsity: 50, Seed: secret}
				out, err := compile.Compile(jpegsim.BuildProgram(spec), mode)
				if err != nil {
					return nil, err
				}
				return out.Prog, nil
			}
			kind, err := workloads.Parse(*workload)
			if err != nil {
				return nil, fmt.Errorf("unknown workload %q: %w", *workload, err)
			}
			spec := workloads.HarnessSpec{Kind: kind, W: *w, I: *iters, Secret: secret}
			out, err := compile.Compile(workloads.Harness(spec), mode)
			if err != nil {
				return nil, err
			}
			return out.Prog, nil
		}
	}

	fmt.Printf("distinguishing secrets %d and %d on %s\n\n", *s1, *s2, *workload)

	baseRep, err := leak.Distinguish(pipeline.DefaultConfig(), build(compile.Plain), *s1, *s2)
	if err != nil {
		fatal("baseline: %v", err)
	}
	fmt.Printf("baseline architecture, unprotected binary:\n  %v\n\n", baseRep)

	secRep, err := leak.Distinguish(pipeline.SecureConfig(), build(compile.SeMPE), *s1, *s2)
	if err != nil {
		fatal("sempe: %v", err)
	}
	fmt.Printf("SeMPE architecture, sJMP-instrumented binary:\n  %v\n\n", secRep)

	legacyRep, err := leak.Distinguish(pipeline.DefaultConfig(), build(compile.SeMPE), *s1, *s2)
	if err != nil {
		fatal("legacy: %v", err)
	}
	fmt.Printf("legacy architecture, same sJMP binary (backward compatible, unprotected):\n  %v\n", legacyRep)

	if baseRep.Leaks() && !secRep.Leaks() {
		fmt.Println("\nRESULT: SeMPE closes every observed channel the baseline leaks.")
	} else if !baseRep.Leaks() {
		fmt.Println("\nRESULT: inconclusive — the baseline did not leak for these secrets.")
		os.Exit(1)
	} else {
		fmt.Println("\nRESULT: LEAK under SeMPE — this would be an implementation bug.")
		os.Exit(1)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sempe-leak: "+format+"\n", args...)
	os.Exit(1)
}
