// Package repro holds the repository-level benchmark harness: one benchmark
// per table and figure of the paper's evaluation, plus ablations for the
// design choices DESIGN.md calls out. Custom metrics carry the paper's
// quantities (slowdowns, overheads, miss rates); ns/op measures simulator
// wall time, which is not a paper quantity.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/compile"
	"repro/internal/emu"
	"repro/internal/experiments"
	"repro/internal/jpegsim"
	"repro/internal/lang"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

func runOn(b *testing.B, cfg pipeline.Config, p *lang.Program, mode compile.Mode) *pipeline.Core {
	b.Helper()
	out, err := compile.Compile(p, mode)
	if err != nil {
		b.Fatal(err)
	}
	core := pipeline.New(cfg, out.Prog)
	if err := core.Run(); err != nil {
		b.Fatal(err)
	}
	return core
}

// ------------------------------------------------------------- Figure 10

// benchFig10 measures one (kernel, W) point: baseline, SeMPE, and the
// constant-time rewrite, reporting the paper's Fig. 10a/b series values.
func benchFig10(b *testing.B, kind workloads.Kind, w int) {
	spec := workloads.HarnessSpec{Kind: kind, W: w, I: 4}
	var base, sec, cte uint64
	for i := 0; i < b.N; i++ {
		base = runOn(b, pipeline.DefaultConfig(), workloads.Harness(spec), compile.Plain).Stats.Cycles
		sec = runOn(b, pipeline.SecureConfig(), workloads.Harness(spec), compile.SeMPE).Stats.Cycles
		cte = runOn(b, pipeline.DefaultConfig(), workloads.HarnessCT(spec), compile.Plain).Stats.Cycles
	}
	sempeX := float64(sec) / float64(base)
	cteX := float64(cte) / float64(base)
	b.ReportMetric(sempeX, "sempe_x")                     // Fig. 10a solid line
	b.ReportMetric(cteX, "cte_x")                         // Fig. 10a dashed line
	b.ReportMetric(sempeX/float64(w+1), "sempe_vs_ideal") // Fig. 10b
	b.ReportMetric(cteX/float64(w+1), "cte_vs_ideal")
}

func BenchmarkFig10(b *testing.B) {
	for _, kind := range workloads.All() {
		for _, w := range []int{1, 4, 10} {
			b.Run(fmt.Sprintf("%s/W%d", kind, w), func(b *testing.B) {
				benchFig10(b, kind, w)
			})
		}
	}
}

// -------------------------------------------------------- Figures 8 and 9

// benchFig8 measures one (format, size) cell of Fig. 8 and reports the
// Fig. 9 miss rates from the same runs.
func benchFig8(b *testing.B, format jpegsim.Format, blocks int) {
	img := jpegsim.ImageSpec{Format: format, Blocks: blocks, Sparsity: 60, Seed: 11}
	var base, sec *pipeline.Core
	for i := 0; i < b.N; i++ {
		p := jpegsim.BuildProgram(img)
		base = runOn(b, pipeline.DefaultConfig(), p, compile.Plain)
		sec = runOn(b, pipeline.SecureConfig(), p, compile.SeMPE)
	}
	b.ReportMetric(100*(float64(sec.Stats.Cycles)/float64(base.Stats.Cycles)-1), "overhead_%")
	b.ReportMetric(100*sec.Hier.IL1.Stats.MissRate(), "il1_miss_%")
	b.ReportMetric(100*sec.Hier.DL1.Stats.MissRate(), "dl1_miss_%")
	b.ReportMetric(100*sec.Hier.L2.Stats.MissRate(), "l2_miss_%")
}

func BenchmarkFig8(b *testing.B) {
	for _, f := range jpegsim.Formats() {
		for _, size := range jpegsim.SizeLabels {
			b.Run(fmt.Sprintf("%s/%s", f, size.Label), func(b *testing.B) {
				benchFig8(b, f, size.Blocks)
			})
		}
	}
}

// BenchmarkFig9 reports the baseline-vs-SeMPE cache miss rates explicitly
// (Fig. 8's benchmark reports only the secure side).
func BenchmarkFig9(b *testing.B) {
	for _, f := range jpegsim.Formats() {
		b.Run(f.String(), func(b *testing.B) {
			img := jpegsim.ImageSpec{Format: f, Blocks: 32, Sparsity: 60, Seed: 11}
			var base, sec *pipeline.Core
			for i := 0; i < b.N; i++ {
				p := jpegsim.BuildProgram(img)
				base = runOn(b, pipeline.DefaultConfig(), p, compile.Plain)
				sec = runOn(b, pipeline.SecureConfig(), p, compile.SeMPE)
			}
			b.ReportMetric(100*base.Hier.DL1.Stats.MissRate(), "dl1_base_%")
			b.ReportMetric(100*sec.Hier.DL1.Stats.MissRate(), "dl1_sempe_%")
			b.ReportMetric(100*base.Hier.IL1.Stats.MissRate(), "il1_base_%")
			b.ReportMetric(100*sec.Hier.IL1.Stats.MissRate(), "il1_sempe_%")
			b.ReportMetric(100*base.Hier.L2.Stats.MissRate(), "l2_base_%")
			b.ReportMetric(100*sec.Hier.L2.Stats.MissRate(), "l2_sempe_%")
		})
	}
}

// --------------------------------------------------------------- Table I

// BenchmarkTable1Worst measures the worst-case overheads quoted in Table I:
// the deepest nesting (W=10) for SeMPE and CTE.
func BenchmarkTable1Worst(b *testing.B) {
	for _, kind := range []workloads.Kind{workloads.Fibonacci, workloads.Quicksort} {
		b.Run(kind.String(), func(b *testing.B) {
			benchFig10(b, kind, 10)
		})
	}
}

// -------------------------------------------------------------- Ablations

// BenchmarkAblationSnapshot compares the chosen ArchRS snapshot (48
// architectural registers) against the rejected PhyRS design (256 physical
// registers + RAT) — paper §IV-F.
func BenchmarkAblationSnapshot(b *testing.B) {
	spec := workloads.HarnessSpec{Kind: workloads.Fibonacci, W: 6, I: 4}
	for _, tc := range []struct {
		name  string
		bytes int
	}{
		{"ArchRS", 0}, // default: 48 regs
		{"PhyRS", mem.PhyRSSnapshotBytes},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := pipeline.SecureConfig()
			cfg.SPM.SnapshotBytes = tc.bytes
			var core *pipeline.Core
			for i := 0; i < b.N; i++ {
				core = runOn(b, cfg, workloads.Harness(spec), compile.SeMPE)
			}
			b.ReportMetric(float64(core.Stats.Cycles), "cycles")
			b.ReportMetric(float64(core.SPM.BytesSaved), "spm_bytes_saved")
			b.ReportMetric(float64(core.Stats.SPMStallCycles), "spm_stall_cycles")
		})
	}
}

// BenchmarkAblationSPMBandwidth varies the scratchpad port width, showing
// why Table II provisions 64 B/cycle.
func BenchmarkAblationSPMBandwidth(b *testing.B) {
	spec := workloads.HarnessSpec{Kind: workloads.Fibonacci, W: 6, I: 4}
	for _, bw := range []int{8, 16, 64, 256} {
		b.Run(fmt.Sprintf("%dBpc", bw), func(b *testing.B) {
			cfg := pipeline.SecureConfig()
			cfg.SPM.Bandwidth = bw
			var core *pipeline.Core
			for i := 0; i < b.N; i++ {
				core = runOn(b, cfg, workloads.Harness(spec), compile.SeMPE)
			}
			b.ReportMetric(float64(core.Stats.Cycles), "cycles")
			b.ReportMetric(float64(core.Stats.SPMStallCycles), "spm_stall_cycles")
		})
	}
}

// BenchmarkAblationPrefetch toggles the stride/stream prefetchers: the
// paper credits part of SeMPE's near-ideal behavior to the prefetching
// effect between the two paths.
func BenchmarkAblationPrefetch(b *testing.B) {
	img := jpegsim.ImageSpec{Format: jpegsim.PPM, Blocks: 32, Sparsity: 60, Seed: 11}
	for _, on := range []bool{true, false} {
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := pipeline.SecureConfig()
			if !on {
				cfg.StridePrefetchTable = 0
				cfg.StreamWindow = 0
			}
			var core *pipeline.Core
			for i := 0; i < b.N; i++ {
				core = runOn(b, cfg, jpegsim.BuildProgram(img), compile.SeMPE)
			}
			b.ReportMetric(float64(core.Stats.Cycles), "cycles")
			b.ReportMetric(100*core.Hier.DL1.Stats.MissRate(), "dl1_miss_%")
		})
	}
}

// BenchmarkAblationDrains reports how many cycles the three per-SecBlock
// pipeline drains cost (they cannot be disabled — they are load-bearing for
// correctness — so this quantifies rather than toggles them).
func BenchmarkAblationDrains(b *testing.B) {
	spec := workloads.HarnessSpec{Kind: workloads.Quicksort, W: 4, I: 4}
	var core *pipeline.Core
	for i := 0; i < b.N; i++ {
		core = runOn(b, pipeline.SecureConfig(), workloads.Harness(spec), compile.SeMPE)
	}
	b.ReportMetric(float64(core.Stats.DrainStallCycles), "drain_stall_cycles")
	b.ReportMetric(100*float64(core.Stats.DrainStallCycles)/float64(core.Stats.Cycles), "drain_%_of_cycles")
}

// BenchmarkAblationRedirectPenalty varies the front-end redirect cost paid
// at every eosJMP jump-back.
func BenchmarkAblationRedirectPenalty(b *testing.B) {
	spec := workloads.HarnessSpec{Kind: workloads.Ones, W: 4, I: 4}
	for _, pen := range []int{0, 3, 10} {
		b.Run(fmt.Sprintf("penalty%d", pen), func(b *testing.B) {
			cfg := pipeline.SecureConfig()
			cfg.RedirectPenalty = pen
			var core *pipeline.Core
			for i := 0; i < b.N; i++ {
				core = runOn(b, cfg, workloads.Harness(spec), compile.SeMPE)
			}
			b.ReportMetric(float64(core.Stats.Cycles), "cycles")
		})
	}
}

// BenchmarkAblationCollapse measures the §IV-E nesting-collapse compiler
// optimization on a then-nested secret chain: one secure region with a
// wider condition replaces a stack of nested regions.
func BenchmarkAblationCollapse(b *testing.B) {
	build := func(collapse bool) *lang.Program {
		body := []lang.Stmt{lang.Set("x", lang.B(lang.Add, lang.V("x"), lang.N(1)))}
		for i := 4; i >= 0; i-- {
			cond := lang.B(lang.And, lang.B(lang.Shr, lang.V("s"), lang.N(int64(i))), lang.N(1))
			body = []lang.Stmt{lang.SecretIf(cond, body, nil)}
		}
		body = append(body, lang.Set("i", lang.B(lang.Add, lang.V("i"), lang.N(1))))
		p := &lang.Program{
			Vars: []*lang.VarDecl{
				{Name: "s", Init: 0b11111, Secret: true},
				{Name: "x"}, {Name: "i"},
			},
			Body: []lang.Stmt{lang.Loop(lang.B(lang.Lt, lang.V("i"), lang.N(100)), body)},
		}
		if collapse {
			lang.CollapseNested(p)
		}
		return p
	}
	for _, collapse := range []bool{false, true} {
		name := "nested"
		if collapse {
			name = "collapsed"
		}
		b.Run(name, func(b *testing.B) {
			var core *pipeline.Core
			for i := 0; i < b.N; i++ {
				core = runOn(b, pipeline.SecureConfig(), build(collapse), compile.SeMPE)
			}
			b.ReportMetric(float64(core.Stats.Cycles), "cycles")
			b.ReportMetric(float64(core.Stats.SJmps), "sjmps")
			b.ReportMetric(float64(core.Stats.MaxNestDepth), "max_nest")
		})
	}
}

// --------------------------------------------------------- infrastructure

// BenchmarkSimulatorSpeed measures raw simulation throughput (simulated
// instructions per wall second) — an infrastructure number, not a paper
// result. Cores come from a warm prototype (pooled Reset, shared
// pre-decode table), so the number measures simulation, not construction;
// TestPrototypeMatchesNew pins the pooled run cycle-identical to a fresh
// one.
func BenchmarkSimulatorSpeed(b *testing.B) {
	spec := workloads.HarnessSpec{Kind: workloads.Quicksort, W: 2, I: 4}
	out, err := compile.Compile(workloads.Harness(spec), compile.Plain)
	if err != nil {
		b.Fatal(err)
	}
	proto := pipeline.NewPrototype(pipeline.DefaultConfig(), out.Prog)
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core := pipeline.NewFromPrototype(proto)
		if err := core.Run(); err != nil {
			b.Fatal(err)
		}
		insts += core.Stats.Insts
		proto.Recycle(core)
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkSteadyStatePipeline measures one StepCycle of the out-of-order
// core in steady state (fetch through commit on a long-running loop).
// allocs/op is the headline: the uop pool, ring buffers, and pre-decode
// cache make the whole fetch-to-commit path allocation-free, so this must
// report ~0 allocs/op.
func BenchmarkSteadyStatePipeline(b *testing.B) {
	spec := workloads.HarnessSpec{Kind: workloads.Quicksort, W: 2, I: 1 << 20}
	out, err := compile.Compile(workloads.Harness(spec), compile.Plain)
	if err != nil {
		b.Fatal(err)
	}
	cfg := pipeline.DefaultConfig()
	core := pipeline.New(cfg, out.Prog)
	// Warm the pool, predictors, and caches past the cold-start transient.
	for i := 0; i < 10_000; i++ {
		if err := core.StepCycle(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.Halted() {
			b.Fatal("workload halted mid-benchmark; raise I")
		}
		if err := core.StepCycle(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(core.Stats.Insts)/float64(core.Stats.Cycles), "ipc")
}

// BenchmarkSteadyStateSecure is the same measurement with SeMPE enabled
// (drains, SPM snapshots, and commit-time redirects on the hot path).
func BenchmarkSteadyStateSecure(b *testing.B) {
	spec := workloads.HarnessSpec{Kind: workloads.Quicksort, W: 2, I: 1 << 20}
	out, err := compile.Compile(workloads.Harness(spec), compile.SeMPE)
	if err != nil {
		b.Fatal(err)
	}
	core := pipeline.New(pipeline.SecureConfig(), out.Prog)
	for i := 0; i < 10_000; i++ {
		if err := core.StepCycle(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.Halted() {
			b.Fatal("workload halted mid-benchmark; raise I")
		}
		if err := core.StepCycle(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemAccess measures the sparse-memory fast paths: in-page accesses
// ride encoding/binary plus the one-entry last-page cache; cross-page
// accesses split into per-page bulk copies. All must be allocation-free.
func BenchmarkMemAccess(b *testing.B) {
	const page = 1 << 14
	cases := []struct {
		name string
		addr uint64
	}{
		{"Read64/inpage", 128},
		{"Read64/crosspage", page - 3},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			m := mem.NewMemory()
			m.Write64(tc.addr, 0x0123456789abcdef)
			b.ReportAllocs()
			b.ResetTimer()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += m.Read64(tc.addr)
			}
			_ = sink
		})
	}
	b.Run("Write64/inpage", func(b *testing.B) {
		m := mem.NewMemory()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Write64(128, uint64(i))
		}
	})
	b.Run("Write64/crosspage", func(b *testing.B) {
		m := mem.NewMemory()
		m.Write8(0, 0) // pre-back both pages so the loop is steady-state
		m.Write8(page, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Write64(page-3, uint64(i))
		}
	})
}

// BenchmarkFig10Sweep measures the wall time of a reduced Fig. 10 sweep —
// the end-to-end number the hot-path work targets — serially and on the
// bounded worker pool (results are bit-identical either way).
func BenchmarkFig10Sweep(b *testing.B) {
	spec := experiments.Fig10Spec{
		Kinds: []workloads.Kind{workloads.Fibonacci, workloads.Quicksort},
		Ws:    []int{1, 4},
		Iters: 4,
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			spec.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig10(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEmulatorSpeed measures the functional golden model's throughput.
func BenchmarkEmulatorSpeed(b *testing.B) {
	spec := workloads.HarnessSpec{Kind: workloads.Quicksort, W: 2, I: 4}
	out, err := compile.Compile(workloads.Harness(spec), compile.Plain)
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := emu.New(emu.Legacy, out.Prog)
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		insts += m.Insts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}
