# One-command verification and perf harness for the SeMPE reproduction.

GO ?= go

.PHONY: check vet build test bench bench-smoke sweep clean

# check is the tier-1 gate plus a benchmark smoke run.
check: vet build test bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench-smoke proves the perf-critical benchmarks still run and that the
# steady-state pipeline loop is allocation-free, in seconds.
bench-smoke:
	$(GO) test -run=NONE -bench='SteadyState|MemAccess|SimulatorSpeed' -benchmem -benchtime=1000x

# bench is the full benchmark suite (paper figures + ablations).
bench:
	$(GO) test -bench=. -benchmem

# sweep regenerates the paper's figures with the parallel runner.
sweep:
	$(GO) run ./cmd/sempe-bench -exp all

clean:
	$(GO) clean ./...
