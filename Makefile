# One-command verification and perf harness for the SeMPE reproduction.

GO ?= go

.PHONY: check vet build test race bench bench-smoke bench-record sweep serve smoke-cluster smoke-attack smoke-keyextract obs-smoke clean

# check is the tier-1 gate plus a benchmark smoke run.
check: vet build test bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench-smoke proves the perf-critical benchmarks still run and that the
# steady-state pipeline loop is allocation-free, in seconds. The attack-trial
# benchmark runs one iteration per config; its allocation gate is the
# TestTrialLoopZeroAlloc test (a 1x bench can't see the steady state).
# The wrong-path replay gates pin the speculative-fetch fast path: prototype
# clones cycle-identical to New, 0 allocs/op with replay enabled, and every
# scenario bit-identical with replay force-disabled.
bench-smoke:
	$(GO) test -run=NONE -bench='SteadyState|MemAccess|SimulatorSpeed' -benchmem -benchtime=1000x
	$(GO) test -run=NONE -bench='AttackTrials' -benchmem -benchtime=1x ./internal/attack
	$(GO) test ./internal/experiments/ -run 'TestSteadyStateZeroAllocSpecDisarmed'
	$(GO) test ./internal/pipeline/ -run 'TestPrototypeMatchesNew|TestWrongPathReplayZeroAlloc'
	$(GO) test ./internal/experiments/ -run 'TestWrongPathReplayDifferential'

# bench is the full benchmark suite (paper figures + ablations).
bench:
	$(GO) test -bench=. -benchmem

# bench-record appends a {date, commit, minst_per_s, allocs_per_op, ipc}
# entry to the committed BENCH_sim.json trajectory. Pass LABEL=<tag>.
bench-record:
	./scripts/bench_record.sh $(LABEL)

# race runs the suite under the race detector (CI runs this too; the
# sweep engine and sempe-serve are the concurrent pieces).
race:
	$(GO) test -race ./...

# sweep regenerates the paper's figures through the scenario registry.
sweep:
	$(GO) run ./cmd/sempe-bench -exp all

# serve starts the HTTP evaluation service on :8080.
serve:
	$(GO) run ./cmd/sempe-serve

# smoke-cluster boots two local workers, shards a quick fig10a sweep
# across them, and diffs the merged JSON against a serial run (then
# scrapes /metrics from both live workers and re-runs warm from the
# on-disk store). CI runs this too.
smoke-cluster:
	./scripts/cluster_smoke.sh

# obs-smoke exercises the observability layer end to end: the metrics
# registry and journal unit tests, the /metrics + /runs/{id}/events serve
# tests (distributed spans included), the instrumentation-inertness and
# spec-trace differentials with their zero-alloc gates, then the cluster
# smoke's live-fleet /metrics scrape.
obs-smoke:
	$(GO) test ./internal/obs/
	$(GO) test ./internal/serve/ -run 'TestMetrics|TestRunEvents|TestPprof|TestDistributedRunThroughServe'
	$(GO) test ./internal/experiments/ -run 'TestObservabilityDifferential|TestSteadyStateZeroAllocWithMetrics|TestSpecTraceDifferential|TestSteadyStateZeroAllocSpecDisarmed'
	./scripts/cluster_smoke.sh

# smoke-attack runs the attack lab end to end: the baseline must leak the
# secret (recovery + TVLA) and extract a 4-bit key from a leaky victim,
# SeMPE and the constant-time control must not, and the sharded spectre
# and keyextract sweeps must merge byte-identically to the serial runs.
# CI runs this too; smoke-keyextract is an alias for discoverability.
smoke-attack smoke-keyextract:
	./scripts/attack_smoke.sh

clean:
	$(GO) clean ./...
