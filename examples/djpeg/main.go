// djpeg demonstrates the paper's real-world case study: an image decoder
// whose per-block decode path depends on the (secret) image content. Two
// images of identical size but different content are distinguishable on the
// baseline core — the decoder runs longer on busy images — and
// indistinguishable under SeMPE. The example also prints a miniature of the
// paper's Fig. 8 overhead comparison across output formats.
//
//	go run ./examples/djpeg
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/compile"
	"repro/internal/isa"
	"repro/internal/jpegsim"
	"repro/internal/lang"
	"repro/internal/leak"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

func main() {
	// Part 1: the content leak.
	fmt.Println("-- image content leak --")
	build := func(mode compile.Mode) func(uint64) (*isa.Program, error) {
		return func(seed uint64) (*isa.Program, error) {
			spec := jpegsim.ImageSpec{Format: jpegsim.PPM, Blocks: 16, Sparsity: 50, Seed: seed}
			out, err := compile.Compile(jpegsim.BuildProgram(spec), mode)
			if err != nil {
				return nil, err
			}
			return out.Prog, nil
		}
	}
	baseRep, err := leak.Distinguish(pipeline.DefaultConfig(), build(compile.Plain), 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline, two same-size images: %v\n", baseRep)
	secRep, err := leak.Distinguish(pipeline.SecureConfig(), build(compile.SeMPE), 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SeMPE,    two same-size images: %v\n\n", secRep)

	// Part 2: what the protection costs per output format (Fig. 8 in
	// miniature).
	fmt.Println("-- protection overhead by output format --")
	t := &stats.Table{Header: []string{"format", "baseline cycles", "SeMPE cycles", "overhead"}}
	for _, f := range jpegsim.Formats() {
		spec := jpegsim.ImageSpec{Format: f, Blocks: 32, Sparsity: 50, Seed: 9}
		p := jpegsim.BuildProgram(spec)
		base := mustRun(pipeline.DefaultConfig(), p, compile.Plain)
		sec := mustRun(pipeline.SecureConfig(), p, compile.SeMPE)
		t.AddRow(f.String(), stats.Int(base.Stats.Cycles), stats.Int(sec.Stats.Cycles),
			stats.Percent(float64(sec.Stats.Cycles)/float64(base.Stats.Cycles)-1))
	}
	t.Render(os.Stdout)
	fmt.Println("PPM spends the largest fraction of its time in secret-dependent decode")
	fmt.Println("steps, so it pays the most; BMP's heavy public back-end dilutes the cost.")
}

func mustRun(cfg pipeline.Config, p *lang.Program, mode compile.Mode) *pipeline.Core {
	out, err := compile.Compile(p, mode)
	if err != nil {
		log.Fatal(err)
	}
	core := pipeline.New(cfg, out.Prog)
	if err := core.Run(); err != nil {
		log.Fatal(err)
	}
	return core
}
