// Quickstart: assemble a secret-dependent branch, run it on the baseline
// core and on the SeMPE core, and watch SeMPE execute both paths while
// computing the same result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/pipeline"
)

const src = `
; if (secret != 0) { r10 = 111 } else { r10 = 222 }
; The "s" prefix on sbne marks the branch secure (sJMP); eosjmp marks the
; join point. On a legacy core both are ignored.
.data out 8
main:
    li    r8, 1              ; the secret
    sbne  r8, rz, taken
    li    r10, 222           ; not-taken path (always executed first on SeMPE)
    li    r11, 1
    jmp   join
taken:
    li    r10, 111           ; taken path
    li    r12, 2
join:
    eosjmp
    la    r9, out
    st    r10, [r9+0]
    halt
`

func main() {
	prog, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	sjmp, eos := prog.CountSecure()
	fmt.Printf("assembled %d bytes, %d sJMP + %d eosJMP\n\n", len(prog.Code), sjmp, eos)

	for _, arch := range []struct {
		name string
		cfg  pipeline.Config
	}{
		{"baseline (prefix ignored)", pipeline.DefaultConfig()},
		{"SeMPE (dual-path)", pipeline.SecureConfig()},
	} {
		core := pipeline.New(arch.cfg, prog)
		if err := core.Run(); err != nil {
			log.Fatal(err)
		}
		regs := core.ArchRegs()
		fmt.Printf("%-28s result r10=%d, committed %d instructions in %d cycles\n",
			arch.name, regs[10], core.Stats.Insts, core.Stats.Cycles)
		fmt.Printf("%-28s secure branches: %d sJMP, %d eosJMP commits, %d jump-backs\n\n",
			"", core.Stats.SJmps, core.Stats.EOSJmps, core.Stats.SecRedirects)
	}
	fmt.Println("Same result on both cores; SeMPE committed both paths (more instructions),")
	fmt.Println("so nothing the attacker observes depends on which path was the real one.")
}
