// nesting sweeps the secret-branch nesting depth W and prints the measured
// slowdowns against the ideal (the sum of all branch-path times, ≈ W+1) —
// the paper's Fig. 10 in miniature, for one kernel on the console.
//
//	go run ./examples/nesting
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	spec := experiments.Fig10Spec{
		Kinds: []workloads.Kind{workloads.Quicksort},
		Ws:    []int{1, 2, 4, 6, 8, 10},
		Iters: 4,
	}
	fmt.Println("sweeping nesting depth for", spec.Kinds[0], "(this simulates ~10M instructions)")
	rows, err := experiments.Fig10(spec)
	if err != nil {
		log.Fatal(err)
	}

	t := &stats.Table{
		Title:  "slowdown vs. unprotected baseline",
		Header: []string{"W", "paths", "SeMPE", "SeMPE/ideal", "CTE(FaCT)", "CTE/SeMPE"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.W),
			fmt.Sprintf("%d", r.W+1),
			stats.Ratio(r.SeMPESlowdown),
			stats.Float(r.SeMPESlowdown/r.Ideal, 2),
			stats.Ratio(r.CTESlowdown),
			stats.Ratio(r.CTESlowdown/r.SeMPESlowdown),
		)
	}
	t.Render(os.Stdout)

	fmt.Println("SeMPE grows linearly with the number of branch paths (W+1) and stays")
	fmt.Println("near the ideal; constant-time expressions grow super-linearly on top of")
	fmt.Println("a much larger constant (the oblivious-sort penalty).")
}
