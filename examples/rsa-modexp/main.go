// rsa-modexp reproduces the paper's motivating example (Fig. 1): modular
// exponentiation with a square-and-multiply loop whose multiply step runs
// only for the set bits of the secret exponent. On the baseline core the
// total cycle count grows with the Hamming weight of the key — the classic
// RSA timing channel. Under SeMPE the cycle count is identical for every
// key.
//
//	go run ./examples/rsa-modexp
package main

import (
	"fmt"
	"log"
	"math/bits"

	"repro/internal/compile"
	"repro/internal/lang"
	"repro/internal/pipeline"
)

// modexp builds: r = b^e mod m with a bit-serial square-and-multiply loop,
// the secret branch guarding the multiply exactly as in the paper's Fig. 1.
func modexp(key uint64, nbits int) *lang.Program {
	return &lang.Program{
		Name: "modexp",
		Vars: []*lang.VarDecl{
			{Name: "e", Init: int64(key), Secret: true},
			{Name: "r", Init: 1},
			{Name: "b", Init: 7},
			{Name: "m", Init: 1000003},
			{Name: "i", Init: 0},
			{Name: "bit", Init: 0},
		},
		Body: []lang.Stmt{
			lang.Loop(lang.B(lang.Lt, lang.V("i"), lang.N(int64(nbits))), []lang.Stmt{
				// r = r*r mod m (the square happens every bit).
				lang.Set("r", lang.B(lang.Rem, lang.B(lang.Mul, lang.V("r"), lang.V("r")), lang.V("m"))),
				lang.Set("bit", lang.B(lang.And, lang.B(lang.Shr, lang.V("e"), lang.V("i")), lang.N(1))),
				// if (e_i == 1) { r = r*b mod m }  -- the leaky branch.
				lang.SecretIf(lang.V("bit"),
					[]lang.Stmt{
						lang.Set("r", lang.B(lang.Rem, lang.B(lang.Mul, lang.V("r"), lang.V("b")), lang.V("m"))),
					},
					nil),
				lang.Set("i", lang.B(lang.Add, lang.V("i"), lang.N(1))),
			}),
		},
	}
}

func run(cfg pipeline.Config, mode compile.Mode, key uint64, nbits int) (cycles uint64, result uint64) {
	out, err := compile.Compile(modexp(key, nbits), mode)
	if err != nil {
		log.Fatal(err)
	}
	core := pipeline.New(cfg, out.Prog)
	if err := core.Run(); err != nil {
		log.Fatal(err)
	}
	addr, err := out.ResultAddr("r")
	if err != nil {
		log.Fatal(err)
	}
	return core.Stats.Cycles, core.Mem().Read64(addr)
}

func refModexp(b, e, m uint64, nbits int) uint64 {
	r := uint64(1)
	for i := 0; i < nbits; i++ {
		r = r * r % m
		if e>>uint(i)&1 == 1 {
			r = r * b % m
		}
	}
	return r
}

func main() {
	const nbits = 16
	keys := []uint64{0x0000, 0x0001, 0x00FF, 0x5555, 0xFFFF}

	fmt.Println("modular exponentiation, 16-bit secret exponent (paper Fig. 1)")
	fmt.Println()
	fmt.Printf("%-8s %-8s %-16s %-16s %s\n", "key", "weight", "baseline cycles", "SeMPE cycles", "result ok")
	var baseCycles, secCycles []uint64
	for _, key := range keys {
		bc, br := run(pipeline.DefaultConfig(), compile.Plain, key, nbits)
		sc, sr := run(pipeline.SecureConfig(), compile.SeMPE, key, nbits)
		want := refModexp(7, key, 1000003, nbits)
		ok := br == want && sr == want
		fmt.Printf("%#04x   %-8d %-16d %-16d %v\n", key, bits.OnesCount64(key), bc, sc, ok)
		baseCycles = append(baseCycles, bc)
		secCycles = append(secCycles, sc)
	}
	fmt.Println()
	if baseCycles[0] != baseCycles[len(baseCycles)-1] {
		fmt.Println("baseline: cycle count tracks the key's Hamming weight -> the attacker")
		fmt.Println("          recovers the exponent from timing (the RSA timing attack).")
	}
	allEqual := true
	for _, c := range secCycles {
		if c != secCycles[0] {
			allEqual = false
		}
	}
	if allEqual {
		fmt.Println("SeMPE:    every key takes exactly the same number of cycles - the")
		fmt.Println("          timing channel is gone, at the cost of always executing the")
		fmt.Println("          multiply path.")
	} else {
		fmt.Println("SeMPE:    UNEXPECTED timing variation - implementation bug!")
	}
}
